(* ActiveCluster: mediator safety properties, stretched-pod behaviour,
   and the partition/mediator torture machinery checking itself.

   Three layers:
   - a qcheck property suite drives the pure mediator state machine with
     arbitrary request/release/reachability interleavings against an
     inline oracle, and the event-log auditor must accept every real
     history (and reject forged ones);
   - directed pod scenarios: mirrored writes visible on both arrays,
     split-brain resolution, frozen pods when the mediator is gone,
     stale-claim handling, double crash and full resync;
   - self-checks: the two planted chaos bugs (skipped failback resync,
     ack before the mirror lands) must be caught by the same sweep that
     gates tier-1, proving the two-array model can actually see
     divergence and lost acks. *)

module Clock = Purity_sim.Clock
module Fa = Purity_core.Flash_array
module Ac = Purity_activecluster.Activecluster
module Link = Purity_activecluster.Link
module Mediator = Purity_activecluster.Mediator
module Ac_plan = Purity_check.Ac_plan
module Ac_runner = Purity_check.Ac_runner
module Acm = Purity_check.Ac_model

let check = Alcotest.check
let bool = Alcotest.bool

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ---------- mediator: property suite ---------- *)

type med_cmd = Req of Mediator.side | Rel of Mediator.side | Reach of bool

let pp_cmd = function
  | Req s -> "req " ^ Mediator.side_name s
  | Rel s -> "rel " ^ Mediator.side_name s
  | Reach b -> Printf.sprintf "reach %b" b

let cmd_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun b -> Req (if b then Mediator.A else Mediator.B)) bool);
        (2, map (fun b -> Rel (if b then Mediator.A else Mediator.B)) bool);
        (1, map (fun b -> Reach b) bool);
      ])

let cmds_arb =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map pp_cmd l))
    QCheck.Gen.(list_size (int_range 1 60) cmd_gen)

(* Oracle: the mediator contract small enough to state inline. One
   holder at a time; the holder re-requesting is re-granted; anyone else
   is denied while a holder exists; an unreachable mediator answers
   nothing; only the holder can release. *)
let prop_mediator_oracle cmds =
  let m = Mediator.Core.create () in
  let holder = ref None and reachable = ref true in
  List.iter
    (fun cmd ->
      match cmd with
      | Reach b ->
        Mediator.Core.set_reachable m b;
        reachable := b
      | Rel s ->
        Mediator.Core.release m s;
        if !holder = Some s then holder := None
      | Req s -> (
        let out = Mediator.Core.request m s in
        let expect =
          if not !reachable then `Unreachable
          else
            match !holder with
            | Some h when h = s -> `Granted
            | Some _ -> `Denied
            | None ->
              holder := Some s;
              `Granted
        in
        if out <> expect then
          QCheck.Test.fail_reportf "request %s: mediator disagrees with oracle"
            (Mediator.side_name s);
        (* a fresh grant implies the loser was fenced first *)
        match out with
        | `Granted ->
          if not (Mediator.Core.is_fenced m (Mediator.other s)) then
            QCheck.Test.fail_reportf "granted %s with the peer unfenced"
              (Mediator.side_name s)
        | `Denied | `Unreachable -> ()))
    cmds;
  (* at most one holder, every grant fence-first: over the whole log *)
  (match Mediator.audit_log (Mediator.Core.events m) with
  | Ok () -> ()
  | Error msg -> QCheck.Test.fail_reportf "audit rejected a real history: %s" msg);
  (* holders agree *)
  Mediator.Core.holder m = !holder

let prop_mediator =
  QCheck.Test.make ~name:"mediator matches oracle on arbitrary interleavings" ~count:500
    cmds_arb prop_mediator_oracle

(* the auditor itself must reject forged histories *)
let test_audit_rejects_forgeries () =
  let expect_bad what log =
    match Mediator.audit_log log with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "audit accepted %s" what
  in
  expect_bad "a grant with no fence first" [ Mediator.Granted A ];
  expect_bad "a double grant"
    [ Mediator.Fenced B; Mediator.Granted A; Mediator.Fenced A; Mediator.Granted B ];
  expect_bad "a release by the loser"
    [ Mediator.Fenced B; Mediator.Granted A; Mediator.Released B ];
  match
    Mediator.audit_log
      [
        Mediator.Requested A; Mediator.Fenced B; Mediator.Granted A; Mediator.Denied B;
        Mediator.Released A; Mediator.Fenced A; Mediator.Granted B;
      ]
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "audit rejected a legal history: %s" msg

(* the clocked wrapper: lost releases leave a stale claim behind *)
let test_mediator_stale_claim () =
  let clock = Clock.create () in
  let m = Mediator.create ~clock () in
  let ask s =
    let r = ref None in
    Mediator.request m s (fun o -> r := Some o);
    Clock.run clock;
    !r
  in
  check bool "A wins the empty race" true (ask A = Some `Granted);
  check bool "B is denied while A holds" true (ask B = Some `Denied);
  Mediator.set_reachable m false;
  check bool "unreachable mediator times out" true (ask B = Some `Unreachable);
  (* A's release is lost in the outage *)
  Mediator.release m A;
  Clock.run clock;
  Mediator.set_reachable m true;
  check bool "stale claim still denies B" true (ask B = Some `Denied);
  check bool "stale holder is A" true (Mediator.holder m = Some A);
  match Mediator.audit m with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "clocked history failed audit: %s" msg

(* ---------- directed pod scenarios ---------- *)

let pod_fixture () =
  let clock = Clock.create () in
  let config = Purity_check.Runner.default_config in
  let a = Fa.create ~config ~clock () in
  let b = Fa.create ~config ~clock () in
  let ac = Ac.create ~a ~b ~pod:"pod0" () in
  (match Ac.create_stretched ac "vol" ~blocks:128 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "create_stretched failed");
  (clock, ac)

let await clock f =
  let r = ref None in
  f (fun x -> r := Some x);
  Clock.run clock;
  !r

let wdata n = String.init (n * 512) (fun i -> Char.chr (((i / 512) + (i mod 7)) mod 256))

let write_ok clock ac ~prefer ~block data =
  match await clock (fun k -> Ac.write ac ~prefer ~volume:"vol" ~block data k) with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.failf "write at %d via %s failed" block (Ac.side_name prefer)

let read_ok clock ac ~prefer ~block ~nblocks =
  match await clock (fun k -> Ac.read ac ~prefer ~volume:"vol" ~block ~nblocks k) with
  | Some (Ok (data, side)) -> (data, side)
  | _ -> Alcotest.failf "read at %d via %s failed" block (Ac.side_name prefer)

let test_mirrored_write_on_both () =
  let clock, ac = pod_fixture () in
  let data = wdata 8 in
  write_ok clock ac ~prefer:A ~block:0 data;
  write_ok clock ac ~prefer:B ~block:32 data;
  (* both blocks visible below the front door, on each array *)
  List.iter
    (fun side ->
      List.iter
        (fun blk ->
          match
            await clock (fun k -> Fa.read (Ac.array ac side) ~volume:"vol" ~block:blk ~nblocks:8 k)
          with
          | Some (Ok got) ->
            check bool
              (Printf.sprintf "array %s holds block %d" (Ac.side_name side) blk)
              true (got = data)
          | _ -> Alcotest.fail "direct read failed")
        [ 0; 32 ])
    [ Ac.A; Ac.B ];
  check bool "pod stayed in sync" true (Ac.status ac = Ac.Sync);
  check bool "mirrors were acked" true ((Ac.counters ac).Ac.mirror_acked >= 2)

let test_partition_solo_and_failback () =
  let clock, ac = pod_fixture () in
  let d0 = wdata 4 in
  write_ok clock ac ~prefer:A ~block:0 d0;
  Ac.cut_link ac;
  (* the write times out on the mirror, races to the mediator, wins *)
  let d1 = wdata 4 in
  write_ok clock ac ~prefer:A ~block:8 d1;
  (match Ac.status ac with
  | Ac.Solo A -> ()
  | st -> Alcotest.failf "expected solo-A after partition, got %s" (Ac.status_name st));
  check bool "loser is fenced" true (Fa.is_fenced (Ac.array ac B));
  (* host I/O aimed at the fenced side is transparently redirected *)
  let got, served = read_ok clock ac ~prefer:B ~block:8 ~nblocks:4 in
  check bool "read redirected to the winner" true (served = A);
  check bool "read sees the solo write" true (got = d1);
  write_ok clock ac ~prefer:B ~block:16 d1;
  (* failback *)
  Ac.heal_link ac;
  (match await clock (fun k -> Ac.settle ac k) with
  | Some (Ac.Sync, Some A) -> ()
  | _ -> Alcotest.fail "failback did not reconcile from A");
  check bool "fence lifted" true (not (Fa.is_fenced (Ac.array ac B)));
  (* the solo-era writes reached B's own storage *)
  List.iter
    (fun blk ->
      match await clock (fun k -> Fa.read (Ac.array ac B) ~volume:"vol" ~block:blk ~nblocks:4 k) with
      | Some (Ok got) ->
        check bool (Printf.sprintf "B resynced block %d" blk) true (got = d1)
      | _ -> Alcotest.fail "direct read failed")
    [ 8; 16 ];
  check bool "resync copied blocks" true ((Ac.counters ac).Ac.resync_blocks > 0);
  match Mediator.audit (Ac.mediator ac) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "mediation history: %s" msg

let test_mediator_loss_freezes () =
  let clock, ac = pod_fixture () in
  write_ok clock ac ~prefer:A ~block:0 (wdata 4);
  Ac.lose_mediator ac;
  Ac.cut_link ac;
  (* nobody can win: the pod must freeze, not split-brain *)
  (match await clock (fun k -> Ac.write ac ~prefer:A ~volume:"vol" ~block:8 (wdata 4) k) with
  | Some (Error `Unavailable) -> ()
  | _ -> Alcotest.fail "write should be refused while frozen");
  check bool "pod frozen" true (Ac.status ac = Ac.Frozen);
  (match await clock (fun k -> Ac.read ac ~prefer:B ~volume:"vol" ~block:0 ~nblocks:4 k) with
  | Some (Error `Unavailable) -> ()
  | _ -> Alcotest.fail "read should be refused while frozen");
  (* restore the world; the pod thaws through settle *)
  Ac.restore_mediator ac;
  Ac.heal_link ac;
  (match await clock (fun k -> Ac.settle ac k) with
  | Some (Ac.Sync, _) -> ()
  | _ -> Alcotest.fail "pod did not thaw");
  write_ok clock ac ~prefer:B ~block:8 (wdata 4)

let test_double_crash_full_resync () =
  let clock, ac = pod_fixture () in
  let d = wdata 8 in
  write_ok clock ac ~prefer:A ~block:0 d;
  write_ok clock ac ~prefer:B ~block:64 d;
  Ac.crash_side ac A;
  Ac.crash_side ac B;
  check bool "pod down" true (Ac.status ac = Ac.Down);
  (match await clock (fun k -> Ac.read ac ~prefer:A ~volume:"vol" ~block:0 ~nblocks:8 k) with
  | Some (Error `Unavailable) -> ()
  | _ -> Alcotest.fail "down pod must refuse reads");
  ignore (await clock (fun k -> Ac.recover_side ac A (fun () -> k ())));
  ignore (await clock (fun k -> Ac.recover_side ac B (fun () -> k ())));
  (match await clock (fun k -> Ac.settle ac k) with
  | Some (Ac.Sync, Some _) -> ()
  | _ -> Alcotest.fail "double-crash recovery did not reconcile");
  let got, _ = read_ok clock ac ~prefer:A ~block:0 ~nblocks:8 in
  check bool "acked write survived double crash" true (got = d);
  let got, _ = read_ok clock ac ~prefer:B ~block:64 ~nblocks:8 in
  check bool "acked write survived double crash (B)" true (got = d)

(* ---------- the torture machinery, and it checking itself ---------- *)

let run_ac_seed seed () =
  match Ac_runner.check_seed seed with
  | Ok () -> ()
  | Error report -> Alcotest.fail (Ac_runner.report_to_string report)

(* a small in-gate sweep; the full 1..200 range runs under @torture-ac *)
let test_smoke_sweep () =
  match Ac_runner.sweep ~base:1L ~count:8 () with
  | None -> ()
  | Some report -> Alcotest.fail (Ac_runner.report_to_string report)

(* Planted bug #1: failback that skips the resync copy. The sweep must
   catch the divergence / lost solo writes within a few seeds. *)
let test_planted_skip_resync_caught () =
  Ac.chaos.Ac.skip_resync <- true;
  Fun.protect
    ~finally:(fun () -> Ac.chaos.Ac.skip_resync <- false)
    (fun () ->
      match Ac_runner.sweep ~shrink_budget:20 ~base:1L ~count:12 () with
      | Some report ->
        check bool
          (Printf.sprintf "report names expected bytes (%s)" report.Ac_runner.violation)
          true
          (contains report.Ac_runner.violation "expected"
          || contains report.Ac_runner.violation "sync")
      | None -> Alcotest.fail "skipped failback resync went undetected")

(* Planted bug #2: acking the host before the mirror lands. A partition
   right after the ack strands the write on the losing side — a lost
   acked write the model must refuse. *)
let test_planted_early_ack_caught () =
  Ac.chaos.Ac.ack_without_peer <- true;
  Fun.protect
    ~finally:(fun () -> Ac.chaos.Ac.ack_without_peer <- false)
    (fun () ->
      match Ac_runner.sweep ~shrink_budget:20 ~base:1L ~count:12 () with
      | Some (_ : Ac_runner.report) -> ()
      | None -> Alcotest.fail "ack-before-mirror went undetected")

let () =
  Alcotest.run "activecluster"
    [
      ( "mediator",
        [
          QCheck_alcotest.to_alcotest prop_mediator;
          Alcotest.test_case "audit rejects forgeries" `Quick test_audit_rejects_forgeries;
          Alcotest.test_case "stale claim after lost release" `Quick
            test_mediator_stale_claim;
        ] );
      ( "pod",
        [
          Alcotest.test_case "mirrored write lands on both" `Quick
            test_mirrored_write_on_both;
          Alcotest.test_case "partition, solo service, failback" `Quick
            test_partition_solo_and_failback;
          Alcotest.test_case "mediator loss freezes the pod" `Quick
            test_mediator_loss_freezes;
          Alcotest.test_case "double crash, full resync" `Quick
            test_double_crash_full_resync;
        ] );
      ( "torture",
        [
          Alcotest.test_case "seed 1" `Quick (run_ac_seed 1L);
          Alcotest.test_case "seed 2" `Quick (run_ac_seed 2L);
          Alcotest.test_case "smoke sweep" `Quick test_smoke_sweep;
          Alcotest.test_case "planted divergence caught" `Slow
            test_planted_skip_resync_caught;
          Alcotest.test_case "planted lost ack caught" `Slow test_planted_early_ack_caught;
        ] );
    ]

open Purity_util

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42L and b = Rng.create ~seed:42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:42L in
  let c = Rng.split a in
  let x = Rng.next_int64 a and y = Rng.next_int64 c in
  check bool "split streams differ" true (x <> y)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:7L in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_bounds () =
  let r = Rng.create ~seed:8L in
  for _ = 1 to 1000 do
    let v = Rng.float r 3.5 in
    check bool "in range" true (v >= 0.0 && v < 3.5)
  done

let test_rng_zipf_skew () =
  (* With heavy skew, rank 0 must dominate. *)
  let r = Rng.create ~seed:9L in
  let counts = Array.make 100 0 in
  for _ = 1 to 10_000 do
    let v = Rng.zipf r ~n:100 ~theta:0.99 in
    check bool "in range" true (v >= 0 && v < 100);
    counts.(v) <- counts.(v) + 1
  done;
  check bool "rank 0 most popular" true (counts.(0) > counts.(50));
  check bool "rank 0 heavily popular" true (counts.(0) > 1000)

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:10L in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:5.0
  done;
  let mean = !sum /. float_of_int n in
  check bool "mean near 5" true (mean > 4.5 && mean < 5.5)

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:11L in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array int) "still a permutation" (Array.init 50 Fun.id) sorted

(* ---------- Xxhash ---------- *)

let test_xxhash_known_vectors () =
  (* Reference values from the xxHash specification. *)
  let h s = Xxhash.hash_string ~seed:0L s in
  check Alcotest.int64 "empty" 0xEF46DB3751D8E999L (h "");
  check Alcotest.int64 "abc" 0x44BC2CF5AD770999L (h "abc")

let test_xxhash_slice_matches_whole () =
  let data = Bytes.of_string "hello world, this is a longer buffer for slicing!" in
  let whole = Xxhash.hash data ~pos:6 ~len:5 in
  let direct = Xxhash.hash_string "world" in
  check Alcotest.int64 "slice equals substring hash" direct whole

let test_xxhash_truncate () =
  let h = 0xFFFFFFFFFFFFFFFFL in
  check Alcotest.int64 "16 bits" 0xFFFFL (Xxhash.truncate h ~bits:16);
  check Alcotest.int64 "64 bits id" h (Xxhash.truncate h ~bits:64)

let prop_xxhash_deterministic =
  QCheck.Test.make ~name:"xxhash deterministic over random strings" ~count:200
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s -> Xxhash.hash_string s = Xxhash.hash_string s)

let prop_xxhash_seed_sensitivity =
  QCheck.Test.make ~name:"xxhash seed changes value" ~count:100
    QCheck.(string_of_size Gen.(1 -- 64))
    (fun s -> Xxhash.hash_string ~seed:1L s <> Xxhash.hash_string ~seed:2L s)

let test_hash63_truncate_int () =
  let h = -1 (* all 63 bits set *) in
  check Alcotest.int "16 bits" 0xFFFF (Xxhash.truncate_int h ~bits:16);
  check Alcotest.int "1 bit" 1 (Xxhash.truncate_int h ~bits:1);
  check Alcotest.int "full width id" h (Xxhash.truncate_int h ~bits:Sys.int_size)

let prop_hash63_fast_equals_ref =
  (* The word kernel and the byte-assembly kernel must agree on every
     slice: stripes, 8-byte remainders, 1..7 trailing bytes, empty. *)
  QCheck.Test.make ~name:"hash63 word kernel equals byte kernel" ~count:500
    QCheck.(pair (string_of_size Gen.(0 -- 200)) (pair small_nat small_nat))
    (fun (s, (a, b)) ->
      let buf = Bytes.of_string s in
      let n = Bytes.length buf in
      let pos = if n = 0 then 0 else a mod (n + 1) in
      let len = if n = pos then 0 else b mod (n - pos + 1) in
      Xxhash.hash63 buf ~pos ~len = Xxhash.hash63_ref buf ~pos ~len
      && Xxhash.hash63 ~seed:42 buf ~pos ~len
         = Xxhash.hash63_ref ~seed:42 buf ~pos ~len)

(* ---------- Crc32c ---------- *)

let test_crc32c_known_vector () =
  (* RFC 3720 test vector: 32 bytes of zeros. *)
  let zeros = Bytes.make 32 '\000' in
  check Alcotest.int32 "32 zeros" 0x8A9136AAl (Crc32c.digest zeros ~pos:0 ~len:32);
  check Alcotest.int32 "123456789" 0xE3069283l (Crc32c.digest_string "123456789")

let test_crc32c_incremental () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let b = Bytes.of_string s in
  let whole = Crc32c.digest b ~pos:0 ~len:(Bytes.length b) in
  let c1 = Crc32c.digest b ~pos:0 ~len:10 in
  let c2 = Crc32c.update c1 b ~pos:10 ~len:(Bytes.length b - 10) in
  check Alcotest.int32 "incremental equals whole" whole c2

let test_crc32c_rfc3720_suite () =
  (* The full RFC 3720 B.4 known-answer suite, against both kernels. *)
  let vectors =
    [
      ("32 zeros", Bytes.make 32 '\000', 0x8A9136AAl);
      ("32 ones", Bytes.make 32 '\xff', 0x62A8AB43l);
      ("ascending", Bytes.init 32 Char.chr, 0x46DD794El);
      ("descending", Bytes.init 32 (fun i -> Char.chr (31 - i)), 0x113FDB5Cl);
    ]
  in
  List.iter
    (fun (name, b, want) ->
      check Alcotest.int32 name want (Crc32c.digest b ~pos:0 ~len:32);
      check Alcotest.int32 (name ^ " (ref)") want (Crc32c.digest_ref b ~pos:0 ~len:32))
    vectors

let prop_crc32c_fast_equals_ref =
  (* The word kernel must agree with the byte kernel on every slice:
     odd lengths, unaligned positions, and the empty slice. *)
  QCheck.Test.make ~name:"crc32c word kernel equals byte kernel" ~count:500
    QCheck.(pair string (pair small_nat small_nat))
    (fun (s, (a, b)) ->
      let buf = Bytes.of_string s in
      let n = Bytes.length buf in
      let pos = if n = 0 then 0 else a mod (n + 1) in
      let len = if n = pos then 0 else b mod (n - pos + 1) in
      Crc32c.digest buf ~pos ~len = Crc32c.digest_ref buf ~pos ~len)

let prop_crc32c_incremental_equals_oneshot =
  (* Splitting at any point and chaining through [update] must match the
     one-shot digest (the two halves exercise both tails). *)
  QCheck.Test.make ~name:"crc32c incremental equals one-shot" ~count:300
    QCheck.(pair string small_nat)
    (fun (s, cut) ->
      let buf = Bytes.of_string s in
      let n = Bytes.length buf in
      let cut = if n = 0 then 0 else cut mod (n + 1) in
      let c1 = Crc32c.digest buf ~pos:0 ~len:cut in
      Crc32c.update c1 buf ~pos:cut ~len:(n - cut) = Crc32c.digest buf ~pos:0 ~len:n)

(* ---------- Histogram ---------- *)

let test_histogram_empty () =
  let h = Histogram.create () in
  check int "count" 0 (Histogram.count h);
  check (Alcotest.float 0.01) "p99 of empty" 0.0 (Histogram.percentile h 99.0)

let test_histogram_single () =
  let h = Histogram.create () in
  Histogram.record h 500.0;
  check (Alcotest.float 0.01) "p50" 500.0 (Histogram.percentile h 50.0);
  check (Alcotest.float 0.01) "max" 500.0 (Histogram.max_value h)

let test_histogram_percentile_accuracy () =
  let h = Histogram.create () in
  for i = 1 to 10_000 do
    Histogram.record h (float_of_int i)
  done;
  let p50 = Histogram.percentile h 50.0 in
  let p99 = Histogram.percentile h 99.0 in
  check bool "p50 within 2%" true (abs_float (p50 -. 5000.0) < 120.0);
  check bool "p99 within 2%" true (abs_float (p99 -. 9900.0) < 220.0);
  check bool "p100 = max" true (Histogram.percentile h 100.0 = 10_000.0)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.record a 10.0;
  Histogram.record b 1000.0;
  Histogram.merge_into ~src:a ~dst:b;
  check int "merged count" 2 (Histogram.count b);
  check (Alcotest.float 0.01) "merged max" 1000.0 (Histogram.max_value b)

let test_histogram_mean () =
  let h = Histogram.create () in
  Histogram.record_n h 10.0 3;
  Histogram.record h 70.0;
  check (Alcotest.float 0.001) "mean exact" 25.0 (Histogram.mean h)

let prop_histogram_percentile_monotone =
  QCheck.Test.make ~name:"histogram percentiles monotone" ~count:100
    QCheck.(list_of_size Gen.(1 -- 200) (float_bound_exclusive 1e6))
    (fun samples ->
      let h = Histogram.create () in
      List.iter (fun v -> Histogram.record h (abs_float v)) samples;
      let ps = [ 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 100.0 ] in
      let vals = List.map (Histogram.percentile h) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono vals)

(* ---------- Bitio ---------- *)

let test_bitio_roundtrip_fixed () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.put w 5L ~width:3;
  Bitio.Writer.put w 0L ~width:0;
  Bitio.Writer.put w 1023L ~width:10;
  Bitio.Writer.put w 0x1FFFFFFFFFFFFFFL ~width:57;
  let r = Bitio.Reader.create (Bitio.Writer.contents w) in
  check Alcotest.int64 "3 bits" 5L (Bitio.Reader.read r ~width:3);
  check Alcotest.int64 "0 bits" 0L (Bitio.Reader.read r ~width:0);
  check Alcotest.int64 "10 bits" 1023L (Bitio.Reader.read r ~width:10);
  check Alcotest.int64 "57 bits" 0x1FFFFFFFFFFFFFFL (Bitio.Reader.read r ~width:57)

let test_bitio_random_access () =
  let w = Bitio.Writer.create () in
  for i = 0 to 99 do
    Bitio.Writer.put w (Int64.of_int i) ~width:7
  done;
  let r = Bitio.Reader.create (Bitio.Writer.contents w) in
  check Alcotest.int64 "tuple 42" 42L (Bitio.Reader.get r ~at:(42 * 7) ~width:7);
  check Alcotest.int64 "tuple 99" 99L (Bitio.Reader.get r ~at:(99 * 7) ~width:7)

let test_bitio_align () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.put w 1L ~width:1;
  Bitio.Writer.align_byte w;
  check int "aligned to 8" 8 (Bitio.Writer.bit_length w);
  Bitio.Writer.align_byte w;
  check int "idempotent" 8 (Bitio.Writer.bit_length w)

let prop_bitio_roundtrip =
  QCheck.Test.make ~name:"bitio roundtrip arbitrary widths" ~count:300
    QCheck.(list_of_size Gen.(1 -- 100) (pair (int_bound 56) (map Int64.of_int (int_bound max_int))))
    (fun fields ->
      let fields = List.map (fun (w, v) -> (w + 1, Int64.logand v (Int64.sub (Int64.shift_left 1L (w + 1)) 1L))) fields in
      let wtr = Bitio.Writer.create () in
      List.iter (fun (w, v) -> Bitio.Writer.put wtr v ~width:w) fields;
      let r = Bitio.Reader.create (Bitio.Writer.contents wtr) in
      List.for_all (fun (w, v) -> Int64.equal (Bitio.Reader.read r ~width:w) v) fields)

(* ---------- Varint ---------- *)

let test_varint_edge_values () =
  let roundtrip v =
    let b = Buffer.create 10 in
    Varint.write b v;
    let got, next = Varint.read (Buffer.to_bytes b) ~pos:0 in
    check int "value" v got;
    check int "consumed" (Buffer.length b) next
  in
  List.iter roundtrip [ 0; 1; 127; 128; 300; 16383; 16384; max_int ]

let test_varint_i64 () =
  let b = Buffer.create 10 in
  Varint.write_i64 b Int64.max_int;
  Varint.write_i64 b 0L;
  let v1, p = Varint.read_i64 (Buffer.to_bytes b) ~pos:0 in
  let v2, _ = Varint.read_i64 (Buffer.to_bytes b) ~pos:p in
  check Alcotest.int64 "max_int64" Int64.max_int v1;
  check Alcotest.int64 "zero" 0L v2

let test_varint_truncated () =
  Alcotest.check_raises "truncated raises" (Invalid_argument "Varint.read: truncated")
    (fun () -> ignore (Varint.read (Bytes.of_string "\x80") ~pos:0))

let test_varint_size () =
  List.iter
    (fun v ->
      let b = Buffer.create 10 in
      Varint.write b v;
      check int (Printf.sprintf "size %d" v) (Buffer.length b) (Varint.size v))
    [ 0; 127; 128; 16383; 16384; 1 lsl 40 ]

(* ---------- Heap ---------- *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some v -> drain (v :: acc)
  in
  check (Alcotest.list int) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] (drain [])

let test_heap_empty () =
  let h = Heap.create ~cmp:Int.compare in
  check bool "empty" true (Heap.is_empty h);
  check bool "pop none" true (Heap.pop h = None);
  check bool "peek none" true (Heap.peek h = None)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun l ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) l;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some v -> drain (v :: acc)
      in
      drain [] = List.sort compare l)

(* Clock's event queue totally orders events by (time, seq): equal-time
   events must pop in schedule order. The heap itself is not stable, so
   this property holds only because the comparator breaks ties — pin it
   with the exact (time, seq) shape Clock uses, interleaving pushes and
   pops the way the sim does. *)
let prop_heap_seq_tiebreak =
  QCheck.Test.make ~name:"heap pops equal-time events in seq order" ~count:200
    QCheck.(list_of_size Gen.(0 -- 100) (pair (int_bound 8) bool))
    (fun ops ->
      let cmp (t1, s1) (t2, s2) =
        let c = Int.compare t1 t2 in
        if c <> 0 then c else Int.compare s1 s2
      in
      let h = Heap.create ~cmp in
      let seq = ref 0 in
      let pushed = ref [] and popped = ref [] in
      List.iter
        (fun (time, do_pop) ->
          if do_pop then (
            match Heap.pop h with
            | Some e -> popped := e :: !popped
            | None -> ())
          else begin
            let e = (time, !seq) in
            incr seq;
            pushed := e :: !pushed;
            Heap.push h e
          end)
        ops;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some v -> drain (v :: acc)
      in
      let final = drain [] in
      (* the tail drained at the end is totally ordered... *)
      List.sort cmp final = final
      (* ...and nothing was lost or duplicated across the interleaving *)
      && List.sort cmp (!popped @ final) = List.sort cmp !pushed)

(* Regression for the pop retained-memory leak: slots [data.(size..cap))]
   used to keep popped elements reachable until a later push happened to
   overwrite them, so the sim's event queue pinned dead events (and their
   closures) up to the heap's high-water mark. After the fix, retention is
   bounded by the live set (vacated slots hold dups of live elements and
   the backing array shrinks at quarter occupancy), and a fully drained
   heap retains nothing at all. *)
let test_heap_pop_releases () =
  let high_water = 512 and live = 32 in
  let h = Heap.create ~cmp:(fun a b -> Int.compare !a !b) in
  for i = 1 to high_water do
    Heap.push h (ref i)
  done;
  let n_popped = high_water - live in
  let weaks = Weak.create n_popped in
  for i = 0 to n_popped - 1 do
    match Heap.pop h with
    | Some r -> Weak.set weaks i (Some r)
    | None -> Alcotest.fail "heap drained early"
  done;
  Gc.full_major ();
  let pinned () =
    let n = ref 0 in
    for i = 0 to n_popped - 1 do
      if Weak.check weaks i then incr n
    done;
    !n
  in
  check int "live elements remain" live (Heap.length h);
  (* the unfixed heap pins ~all 480 popped refs here (cap never shrinks
     below the high-water mark); the fixed one at most cap - size < 3x
     the live set *)
  check bool "retention bounded by live set, not high-water mark" true
    (pinned () <= 3 * live);
  let rec drain () = match Heap.pop h with Some _ -> drain () | None -> () in
  drain ();
  Gc.full_major ();
  check bool "empty heap" true (Heap.is_empty h);
  check int "a drained heap pins nothing" 0 (pinned ())

(* ---------- Lru ---------- *)

let test_lru_eviction () =
  let c = Lru.create ~capacity:3 in
  Lru.add c 1 "a";
  Lru.add c 2 "b";
  Lru.add c 3 "c";
  ignore (Lru.find c 1);
  (* 2 is now least recently used *)
  Lru.add c 4 "d";
  check bool "2 evicted" false (Lru.mem c 2);
  check bool "1 kept" true (Lru.mem c 1);
  check int "size" 3 (Lru.length c)

let test_lru_overwrite () =
  let c = Lru.create ~capacity:2 in
  Lru.add c 1 "a";
  Lru.add c 1 "b";
  check int "no duplicate" 1 (Lru.length c);
  check (Alcotest.option Alcotest.string) "updated" (Some "b") (Lru.find c 1)

let test_lru_remove () =
  let c = Lru.create ~capacity:2 in
  Lru.add c 1 "a";
  Lru.remove c 1;
  check int "removed" 0 (Lru.length c);
  Lru.remove c 99 (* removing absent key is fine *)

let test_lru_fold_order () =
  let c = Lru.create ~capacity:4 in
  Lru.add c 1 "a";
  Lru.add c 2 "b";
  Lru.add c 3 "c";
  ignore (Lru.find c 1);
  let keys = List.rev (Lru.fold (fun k _ acc -> k :: acc) c []) in
  check (Alcotest.list int) "mru first" [ 1; 3; 2 ] keys

let prop_lru_capacity =
  QCheck.Test.make ~name:"lru never exceeds capacity" ~count:100
    QCheck.(pair (int_range 1 16) (list_of_size Gen.(0 -- 200) (int_bound 50)))
    (fun (cap, keys) ->
      let c = Lru.create ~capacity:cap in
      List.iter (fun k -> Lru.add c k k) keys;
      Lru.length c <= cap)

(* ---------- Bloom ---------- *)

let test_bloom_no_false_negatives () =
  let b = Bloom.create ~expected:1000 () in
  for i = 0 to 999 do
    Bloom.add b (Printf.sprintf "key-%06d" i)
  done;
  for i = 0 to 999 do
    check bool "added key is member" true (Bloom.mem b (Printf.sprintf "key-%06d" i))
  done

let test_bloom_empty () =
  let b = Bloom.create ~expected:100 () in
  check bool "empty filter rejects" false (Bloom.mem b "anything");
  check int "no entries" 0 (Bloom.entries b)

let test_bloom_fp_rate_bounded () =
  (* 1% target; allow 5x slack so the test is seed-robust *)
  let b = Bloom.create ~expected:2000 () in
  for i = 0 to 1999 do
    Bloom.add b (Printf.sprintf "present-%06d" i)
  done;
  let fps = ref 0 in
  let probes = 20_000 in
  for i = 0 to probes - 1 do
    if Bloom.mem b (Printf.sprintf "absent-%06d" i) then incr fps
  done;
  let rate = float_of_int !fps /. float_of_int probes in
  check bool
    (Printf.sprintf "false-positive rate %.4f below 0.05" rate)
    true (rate < 0.05);
  (* optimally sized filters sit near 50% occupancy when full *)
  check bool "fill ratio sane" true (Bloom.fill_ratio b > 0.2 && Bloom.fill_ratio b < 0.8)

let test_bloom_binary_keys () =
  (* the block pyramid's keys are 16-byte be64^be64 strings with long
     shared prefixes and embedded NULs — the filter must not care *)
  let be64 v =
    let b = Bytes.create 8 in
    Bytes.set_int64_be b 0 (Int64.of_int v);
    Bytes.to_string b
  in
  let b = Bloom.create ~expected:512 () in
  for blk = 0 to 511 do
    Bloom.add b (be64 3 ^ be64 blk)
  done;
  for blk = 0 to 511 do
    check bool "binary key member" true (Bloom.mem b (be64 3 ^ be64 blk))
  done;
  let fps = ref 0 in
  for blk = 0 to 4095 do
    if Bloom.mem b (be64 4 ^ be64 blk) then incr fps
  done;
  check bool "other-medium keys mostly rejected" true (!fps < 205)

let prop_bloom_members =
  QCheck.Test.make ~name:"bloom has no false negatives" ~count:50
    QCheck.(list_of_size Gen.(1 -- 300) (string_gen_of_size Gen.(0 -- 24) Gen.printable))
    (fun keys ->
      let b = Bloom.create ~expected:(List.length keys) () in
      List.iter (Bloom.add b) keys;
      List.for_all (Bloom.mem b) keys)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "zipf skew" `Quick test_rng_zipf_skew;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "xxhash",
        [
          Alcotest.test_case "known vectors" `Quick test_xxhash_known_vectors;
          Alcotest.test_case "slice" `Quick test_xxhash_slice_matches_whole;
          Alcotest.test_case "truncate" `Quick test_xxhash_truncate;
          QCheck_alcotest.to_alcotest prop_xxhash_deterministic;
          QCheck_alcotest.to_alcotest prop_xxhash_seed_sensitivity;
          Alcotest.test_case "truncate_int" `Quick test_hash63_truncate_int;
          QCheck_alcotest.to_alcotest prop_hash63_fast_equals_ref;
        ] );
      ( "crc32c",
        [
          Alcotest.test_case "known vectors" `Quick test_crc32c_known_vector;
          Alcotest.test_case "incremental" `Quick test_crc32c_incremental;
          Alcotest.test_case "rfc3720 suite" `Quick test_crc32c_rfc3720_suite;
          QCheck_alcotest.to_alcotest prop_crc32c_fast_equals_ref;
          QCheck_alcotest.to_alcotest prop_crc32c_incremental_equals_oneshot;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "single" `Quick test_histogram_single;
          Alcotest.test_case "percentile accuracy" `Quick test_histogram_percentile_accuracy;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "mean" `Quick test_histogram_mean;
          QCheck_alcotest.to_alcotest prop_histogram_percentile_monotone;
        ] );
      ( "bitio",
        [
          Alcotest.test_case "roundtrip fixed" `Quick test_bitio_roundtrip_fixed;
          Alcotest.test_case "random access" `Quick test_bitio_random_access;
          Alcotest.test_case "align" `Quick test_bitio_align;
          QCheck_alcotest.to_alcotest prop_bitio_roundtrip;
        ] );
      ( "varint",
        [
          Alcotest.test_case "edge values" `Quick test_varint_edge_values;
          Alcotest.test_case "int64" `Quick test_varint_i64;
          Alcotest.test_case "truncated" `Quick test_varint_truncated;
          Alcotest.test_case "size" `Quick test_varint_size;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "pop releases elements" `Quick test_heap_pop_releases;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
          QCheck_alcotest.to_alcotest prop_heap_seq_tiebreak;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction" `Quick test_lru_eviction;
          Alcotest.test_case "overwrite" `Quick test_lru_overwrite;
          Alcotest.test_case "remove" `Quick test_lru_remove;
          Alcotest.test_case "fold order" `Quick test_lru_fold_order;
          QCheck_alcotest.to_alcotest prop_lru_capacity;
        ] );
      ( "bloom",
        [
          Alcotest.test_case "no false negatives" `Quick test_bloom_no_false_negatives;
          Alcotest.test_case "empty" `Quick test_bloom_empty;
          Alcotest.test_case "fp rate bounded" `Quick test_bloom_fp_rate_bounded;
          Alcotest.test_case "binary keys" `Quick test_bloom_binary_keys;
          QCheck_alcotest.to_alcotest prop_bloom_members;
        ] );
    ]

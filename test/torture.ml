(* Torture sweep: many random fault-plan scenarios through purity.check.
   Excluded from the tier-1 `dune runtest` gate; run with `make torture`
   or `dune build @torture`. Exit status 1 on the first violation, with a
   report that prints the seed and the shrunk reproducing trace. *)

module Runner = Purity_check.Runner
module Plan = Purity_check.Plan

let () =
  let base = ref 1_000L in
  let count = ref 1_000 in
  let steps = ref Plan.default_gen.Plan.steps in
  let spec =
    [
      ("-base", Arg.String (fun s -> base := Int64.of_string s), "first seed (default 1000)");
      ("-count", Arg.Set_int count, "number of seeds (default 1000)");
      ("-steps", Arg.Set_int steps, "generation steps per scenario");
    ]
  in
  Arg.parse spec (fun _ -> ()) "torture [-base N] [-count N] [-steps N]";
  let gen = { Plan.default_gen with Plan.steps = !steps } in
  let t0 = Unix.gettimeofday () in
  let failed = ref false in
  (try
     for i = 0 to !count - 1 do
       let seed = Int64.add !base (Int64.of_int i) in
       (match Runner.check_seed ~gen seed with
       | Ok () -> ()
       | Error report ->
         Format.printf "%a@." Runner.pp_report report;
         failed := true;
         raise Exit);
       if (i + 1) mod 100 = 0 then
         Format.printf "%d/%d scenarios clean (%.1fs)@." (i + 1) !count
           (Unix.gettimeofday () -. t0)
     done
   with Exit -> ());
  if !failed then exit 1
  else
    Format.printf "torture: %d scenarios clean in %.1fs@." !count
      (Unix.gettimeofday () -. t0)

(* Torture sweep: many random fault-plan scenarios through purity.check.
   Excluded from the tier-1 `dune runtest` gate; run with `make torture`
   or `dune build @torture`. Exit status 1 on the first violation, with a
   report that prints the seed and the shrunk reproducing trace.

   Two suites share the binary:
   - [array]: single-array crash/recovery plans (Runner/Plan);
   - [ac]: stretched-pod ActiveCluster plans — partitions, mediator
     loss, straddling writes, simultaneous crashes — audited by the
     two-array model (Ac_runner/Ac_plan). `dune build @torture-ac` runs
     the fixed seed range 1..200 that CI gates on. *)

module Runner = Purity_check.Runner
module Plan = Purity_check.Plan
module Ac_runner = Purity_check.Ac_runner
module Ac_plan = Purity_check.Ac_plan

let () =
  let suite = ref "array" in
  let base = ref 1_000L in
  let count = ref 1_000 in
  let steps = ref 0 in
  let spec =
    [
      ( "-suite",
        Arg.Symbol ([ "array"; "ac"; "all" ], fun s -> suite := s),
        " which sweep to run (default array)" );
      ("-base", Arg.String (fun s -> base := Int64.of_string s), "first seed (default 1000)");
      ("-count", Arg.Set_int count, "number of seeds (default 1000)");
      ("-steps", Arg.Set_int steps, "generation steps per scenario (0 = suite default)");
    ]
  in
  Arg.parse spec (fun _ -> ()) "torture [-suite array|ac|all] [-base N] [-count N] [-steps N]";
  let failed = ref false in
  let sweep name ~check =
    let t0 = Unix.gettimeofday () in
    (try
       for i = 0 to !count - 1 do
         let seed = Int64.add !base (Int64.of_int i) in
         (match check seed with
         | Ok () -> ()
         | Error report_text ->
           print_string report_text;
           print_newline ();
           failed := true;
           raise Exit);
         if (i + 1) mod 100 = 0 then
           Format.printf "%s: %d/%d scenarios clean (%.1fs)@." name (i + 1) !count
             (Unix.gettimeofday () -. t0)
       done
     with Exit -> ());
    if not !failed then
      Format.printf "torture[%s]: %d scenarios clean in %.1fs@." name !count
        (Unix.gettimeofday () -. t0)
  in
  let array_sweep () =
    let gen =
      if !steps = 0 then Plan.default_gen else { Plan.default_gen with Plan.steps = !steps }
    in
    sweep "array" ~check:(fun seed ->
        match Runner.check_seed ~gen seed with
        | Ok () -> Ok ()
        | Error report -> Error (Format.asprintf "%a" Runner.pp_report report))
  in
  let ac_sweep () =
    let gen =
      if !steps = 0 then Ac_plan.default_gen
      else { Ac_plan.default_gen with Ac_plan.steps = !steps }
    in
    sweep "ac" ~check:(fun seed ->
        match Ac_runner.check_seed ~gen seed with
        | Ok () -> Ok ()
        | Error report -> Error (Ac_runner.report_to_string report))
  in
  (match !suite with
  | "ac" -> ac_sweep ()
  | "all" ->
    array_sweep ();
    if not !failed then ac_sweep ()
  | _ -> array_sweep ());
  if !failed then exit 1

module Dedup = Purity_dedup.Dedup
module Rng = Purity_util.Rng

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let bs = Dedup.block_size
let rng = Rng.create ~seed:0xDED0L

let random_blocks n = Bytes.to_string (Rng.bytes rng (n * bs))

let test_no_duplicates_in_fresh_data () =
  let d = Dedup.create () in
  ignore (Dedup.register d (random_blocks 16));
  let hits = Dedup.find_duplicates d (random_blocks 16) in
  check int "no hits" 0 (List.length hits)

let test_exact_duplicate_write_fully_detected () =
  let d = Dedup.create () in
  let data = random_blocks 16 in
  let id = Dedup.register d data in
  let hits = Dedup.find_duplicates d data in
  let covered = List.fold_left (fun acc h -> acc + h.Dedup.run_blocks) 0 hits in
  check int "all 16 blocks deduplicated" 16 covered;
  List.iter (fun h -> check int "against the registered write" id h.Dedup.src.Dedup.write_id) hits

let test_misaligned_duplicate_detected_via_anchor () =
  (* Duplicate region starts at an arbitrary block offset in the new
     write; the 1-in-8 recorded anchors plus extension must still find
     nearly all of it (paper: runs >= 8 blocks, any alignment). *)
  let d = Dedup.create () in
  let original = random_blocks 32 in
  ignore (Dedup.register d original);
  let prefix = random_blocks 3 in
  let dup = prefix ^ original in
  let hits = Dedup.find_duplicates d dup in
  let covered = List.fold_left (fun acc h -> acc + h.Dedup.run_blocks) 0 hits in
  check bool (Printf.sprintf "covered %d of 32" covered) true (covered >= 30);
  (* the duplicated blocks must map to the right source offsets *)
  List.iter
    (fun h ->
      let src_block = h.Dedup.src.Dedup.block in
      check int "alignment recovered" (h.Dedup.at_block - 3) src_block)
    hits

let test_small_duplicates_can_be_missed () =
  (* A 2-block duplicate that spans no recorded anchor is (correctly)
     invisible: the paper trades tiny duplicates for index size. *)
  let d = Dedup.create () in
  let original = random_blocks 32 in
  ignore (Dedup.register d original);
  (* blocks 1..2 of original, which contain no anchor (anchors at 0,8,...) *)
  let fragment = String.sub original bs (2 * bs) in
  let hits = Dedup.find_duplicates d fragment in
  check int "anchorless fragment missed" 0 (List.length hits)

let test_anchored_fragment_found () =
  let d = Dedup.create () in
  let original = random_blocks 32 in
  ignore (Dedup.register d original);
  (* blocks 8..10 include the anchor at block 8 *)
  let fragment = String.sub original (8 * bs) (3 * bs) in
  let hits = Dedup.find_duplicates d fragment in
  check int "one run" 1 (List.length hits);
  check int "run covers all 3" 3 (List.hd hits).Dedup.run_blocks;
  check int "src block 8" 8 (List.hd hits).Dedup.src.Dedup.block

let test_byte_verification_rejects_collisions () =
  (* Force collisions with 4-bit hashes (16 buckets for 8 recorded
     anchors): lookups hit constantly, but byte comparison must reject
     them all. *)
  let cfg = { Dedup.default_config with Dedup.hash_bits = 4 } in
  let d = Dedup.create ~config:cfg () in
  ignore (Dedup.register d (random_blocks 64));
  let hits = Dedup.find_duplicates d (random_blocks 64) in
  check int "no false dedup despite collisions" 0 (List.length hits);
  check bool "collisions were caught by byte compare" true
    ((Dedup.stats d).Dedup.false_positives > 0)

let test_window_eviction () =
  let cfg = { Dedup.default_config with Dedup.window_writes = 2 } in
  let d = Dedup.create ~config:cfg () in
  let old = random_blocks 8 in
  ignore (Dedup.register d old);
  ignore (Dedup.register d (random_blocks 8));
  ignore (Dedup.register d (random_blocks 8));
  (* 'old' evicted from the window: inline dedup no longer sees it *)
  check int "evicted write not found" 0 (List.length (Dedup.find_duplicates d old))

let test_forget () =
  let d = Dedup.create () in
  let data = random_blocks 8 in
  let id = Dedup.register d data in
  Dedup.forget d ~write_id:id;
  check int "forgotten" 0 (List.length (Dedup.find_duplicates d data));
  check bool "payload gone" true (Dedup.payload d ~write_id:id = None)

let test_record_every_8_index_size () =
  let d = Dedup.create () in
  ignore (Dedup.register d (random_blocks 64));
  let s = Dedup.stats d in
  check int "64 blocks -> 8 recorded hashes" 8 s.Dedup.recorded_hashes

let test_zero_blocks_dedupe_against_each_other () =
  let d = Dedup.create () in
  ignore (Dedup.register d (String.make (16 * bs) '\000'));
  let hits = Dedup.find_duplicates d (String.make (16 * bs) '\000') in
  let covered = List.fold_left (fun acc h -> acc + h.Dedup.run_blocks) 0 hits in
  check int "all zeros dedup" 16 covered

let test_partial_block_tail_ignored () =
  let d = Dedup.create () in
  let data = random_blocks 4 ^ "tail" in
  ignore (Dedup.register d data);
  let hits = Dedup.find_duplicates d data in
  let covered = List.fold_left (fun acc h -> acc + h.Dedup.run_blocks) 0 hits in
  check int "whole blocks only" 4 covered

let prop_hits_are_truthful =
  (* Every returned run must be byte-identical to its claimed source. *)
  QCheck.Test.make ~name:"every hit is byte-verified true" ~count:100
    QCheck.(pair (int_range 1 24) (int_range 0 23))
    (fun (nblocks, insert_at) ->
      let local = Rng.create ~seed:(Int64.of_int ((nblocks * 100) + insert_at)) in
      let d = Dedup.create () in
      let original = Bytes.to_string (Rng.bytes local (nblocks * bs)) in
      ignore (Dedup.register d original);
      let insert_at = insert_at mod nblocks in
      let data =
        Bytes.to_string (Rng.bytes local (insert_at * bs))
        ^ original
        ^ Bytes.to_string (Rng.bytes local (2 * bs))
      in
      let hits = Dedup.find_duplicates d data in
      List.for_all
        (fun h ->
          let src_data = Option.get (Dedup.payload d ~write_id:h.Dedup.src.Dedup.write_id) in
          String.sub data (h.Dedup.at_block * bs) (h.Dedup.run_blocks * bs)
          = String.sub src_data (h.Dedup.src.Dedup.block * bs) (h.Dedup.run_blocks * bs))
        hits)

let prop_hits_nonoverlapping_ordered =
  QCheck.Test.make ~name:"hits are ordered and non-overlapping" ~count:100
    QCheck.(int_range 1 32)
    (fun nblocks ->
      let local = Rng.create ~seed:(Int64.of_int nblocks) in
      let d = Dedup.create () in
      let original = Bytes.to_string (Rng.bytes local (nblocks * bs)) in
      ignore (Dedup.register d original);
      let data = original ^ original in
      let hits = Dedup.find_duplicates d data in
      let rec ok prev_end = function
        | [] -> true
        | h :: rest ->
          h.Dedup.at_block >= prev_end
          && h.Dedup.run_blocks >= 1
          && ok (h.Dedup.at_block + h.Dedup.run_blocks) rest
      in
      ok 0 hits)

let () =
  Alcotest.run "dedup"
    [
      ( "dedup",
        [
          Alcotest.test_case "fresh data" `Quick test_no_duplicates_in_fresh_data;
          Alcotest.test_case "exact duplicate" `Quick test_exact_duplicate_write_fully_detected;
          Alcotest.test_case "misaligned duplicate" `Quick
            test_misaligned_duplicate_detected_via_anchor;
          Alcotest.test_case "anchorless fragment missed" `Quick test_small_duplicates_can_be_missed;
          Alcotest.test_case "anchored fragment found" `Quick test_anchored_fragment_found;
          Alcotest.test_case "collisions verified away" `Quick
            test_byte_verification_rejects_collisions;
          Alcotest.test_case "window eviction" `Quick test_window_eviction;
          Alcotest.test_case "forget" `Quick test_forget;
          Alcotest.test_case "1-in-8 recording" `Quick test_record_every_8_index_size;
          Alcotest.test_case "zero blocks" `Quick test_zero_blocks_dedupe_against_each_other;
          Alcotest.test_case "partial tail ignored" `Quick test_partial_block_tail_ignored;
          QCheck_alcotest.to_alcotest prop_hits_are_truthful;
          QCheck_alcotest.to_alcotest prop_hits_nonoverlapping_ordered;
        ] );
    ]

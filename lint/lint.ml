(* Library interface + driver: scan build dirs for .cmt files, run the
   engine over each, fold in the baseline, produce a summary. *)

module Finding = Finding
module Rules = Rules
module Engine = Engine
module Baseline = Baseline
module Report = Report

(* All .cmt files under [roots] (skipping excluded paths), sorted for
   deterministic report order. *)
let scan_cmts (cfg : Rules.config) ~roots =
  let acc = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | entries ->
      Array.sort String.compare entries;
      Array.iter
        (fun name ->
          let path = Filename.concat dir name in
          if Rules.is_excluded cfg path then ()
          else if Sys.is_directory path then walk path
          else if Filename.check_suffix name ".cmt" then acc := path :: !acc)
        entries
  in
  List.iter (fun r -> if Sys.file_exists r && Sys.is_directory r then walk r) roots;
  List.sort String.compare !acc

let run (cfg : Rules.config) ~baseline ~baseline_path cmts : Report.summary =
  let files = ref 0 in
  let findings = ref [] in
  let waived = ref 0 in
  let waivers = ref 0 in
  let read_errors = ref [] in
  List.iter
    (fun cmt ->
      match Engine.check_cmt cfg cmt with
      | Error e -> read_errors := e :: !read_errors
      | Ok None -> ()
      | Ok (Some (_source, r)) ->
        incr files;
        findings := r.Engine.findings @ !findings;
        waived := !waived + r.Engine.waived;
        waivers := !waivers + r.Engine.waivers)
    cmts;
  let kept, suppressed = Baseline.apply baseline !findings in
  let stale = Baseline.stale ~path:baseline_path baseline in
  {
    Report.files = !files;
    findings = List.sort Finding.order (stale @ kept);
    waived = !waived;
    waivers = !waivers;
    baseline_suppressed = suppressed;
    read_errors = List.rev !read_errors;
  }

(* Rule configuration: which files each rule class applies to, and the
   banned-identifier tables. Paths are matched against the source path the
   compiler recorded (relative to the build root, e.g. "lib/core/state.ml"),
   so the same config works from the dune rule and from tests. *)

type config = {
  hot_path_dirs : string list;
      (* dir substrings where the hot-path hygiene rules apply *)
  recovery_files : string list;
      (* path suffixes where partial functions are flagged *)
  audited_unsafe : string list;
      (* basenames allowed to use unchecked accessors *)
  audited_domains : string list;
      (* basenames allowed to touch Domain/Atomic/Mutex/Condition: the
         deterministic pool, the epoch cell, and the counters they
         aggregate. Shared mutable state anywhere else is a data race
         the moment a pool worker can reach it. *)
  exclude : string list;
      (* path substrings skipped entirely (planted test fixtures) *)
}

let default =
  {
    hot_path_dirs = [ "lib/pyramid/"; "lib/segment/"; "lib/dedup/"; "lib/core/" ];
    recovery_files =
      [
        "lib/core/recovery.ml";
        "lib/core/checkpoint.ml";
        "lib/core/boot_region.ml";
        "lib/replication/replication.ml";
        "lib/activecluster/activecluster.ml";
        "lib/activecluster/mediator.ml";
        "lib/activecluster/link.ml";
      ];
    audited_unsafe =
      [ "word.ml"; "crc32c.ml"; "xxhash.ml"; "gf256.ml"; "lz.ml"; "bloom.ml" ];
    audited_domains = [ "pool.ml"; "epoch.ml"; "kernel_stats.ml"; "registry.ml" ];
    exclude = [ "lint_fixtures" ];
  }

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let suffix_matches path suf =
  String.length path >= String.length suf
  && String.sub path (String.length path - String.length suf) (String.length suf)
     = suf

let in_hot_path cfg path = List.exists (contains_sub path) cfg.hot_path_dirs
let in_recovery cfg path = List.exists (suffix_matches path) cfg.recovery_files
let is_audited cfg path = List.mem (Filename.basename path) cfg.audited_unsafe
let is_audited_domains cfg path = List.mem (Filename.basename path) cfg.audited_domains
let is_excluded cfg path = List.exists (contains_sub path) cfg.exclude

(* ---- banned identifiers (matched on Path.name with "Stdlib." stripped) ---- *)

let strip_stdlib name =
  if String.length name > 7 && String.sub name 0 7 = "Stdlib." then
    String.sub name 7 (String.length name - 7)
  else name

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Wall-clock / process-time reads that break per-seed replay. *)
let determinism_banned =
  [
    "Sys.time";
    "Unix.gettimeofday";
    "Unix.time";
    "Unix.times";
    "Unix.localtime";
    "Unix.gmtime";
    "Unix.mktime";
    "Unix.sleep";
    "Unix.sleepf";
  ]

(* Global-state [Random] is nondeterministic under any reordering of
   callers; [Random.State] with an explicit seeded state is fine (and the
   engine's own [Purity_util.Rng] is the preferred source anyway). *)
let determinism_violation name =
  List.mem name determinism_banned
  || (starts_with ~prefix:"Random." name
     && not (starts_with ~prefix:"Random.State." name))

(* Cross-domain shared-mutable-state machinery. Spawning domains, CAS
   loops, locks: each is either the deterministic pool's own plumbing (in
   an audited module) or an unreviewed parallelism escape hatch that can
   break per-seed replay in ways no torture seed will reproduce twice.
   [Domain.DLS] and [Domain.self]-style reads are just as contained — the
   whole [Domain]/[Atomic]/[Mutex]/[Condition]/[Semaphore] surface is
   flagged outside the audited modules. *)
let domain_modules = [ "Domain."; "Atomic."; "Mutex."; "Condition."; "Semaphore." ]

let domain_violation name = List.exists (fun p -> starts_with ~prefix:p name) domain_modules

(* Unchecked accessors and casts: [Bytes.unsafe_get], [String.unsafe_blit],
   [Array.unsafe_set], [Bytes.unsafe_of_string], [Obj.magic], ... — any
   "unsafe_"-prefixed value of the stdlib buffer/array modules. *)
let unsafe_modules =
  [
    "Bytes"; "String"; "Array"; "Bigarray"; "Float.Array";
    "BytesLabels"; "StringLabels"; "ArrayLabels"; "Float.ArrayLabels";
  ]

let unsafe_violation name =
  name = "Obj.magic"
  ||
  match String.rindex_opt name '.' with
  | None -> false
  | Some i ->
    List.mem (String.sub name 0 i) unsafe_modules
    && starts_with ~prefix:"unsafe_"
         (String.sub name (i + 1) (String.length name - i - 1))

(* Partial functions whose exception in recovery/replication code turns a
   recoverable fault into a failed failover. *)
let partial_banned =
  [ "List.hd"; "List.tl"; "List.nth"; "List.assoc"; "List.find"; "Option.get" ]

let partial_violation name = List.mem name partial_banned

(* Polymorphic structural comparison: fine on immediates, a generic
   C-call dispatch everywhere else. *)
let poly_compare = [ "="; "<>"; "compare" ]

(* The polymorphic-hash Hashtbl interface; flagged at non-primitive key
   types in hot-path modules (use Hashtbl.Make / Purity_util.Stbl). *)
let hashtbl_funcs =
  [
    "Hashtbl.create";
    "Hashtbl.add";
    "Hashtbl.replace";
    "Hashtbl.find";
    "Hashtbl.find_opt";
    "Hashtbl.find_all";
    "Hashtbl.mem";
    "Hashtbl.remove";
  ]

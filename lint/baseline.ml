(* The checked-in baseline acknowledges intentional pre-existing sites at
   file granularity, so the tree lints clean without scattering attributes
   over code that predates the rule. Format, one entry per line:

     <rule> <file> [-- note]

   e.g.  unsafe lib/core/keys.ml -- zero-copy key encode/decode

   An entry suppresses every finding of <rule> whose path ends with <file>.
   Entries that suppress nothing are stale and reported as errors, exactly
   like stale in-source waivers. *)

type entry = {
  b_rule : Finding.rule;
  b_file : string;
  b_note : string;
  b_line : int;  (* line in the baseline file, for stale reports *)
  mutable b_hits : int;
}

let parse ~path contents =
  let errors = ref [] in
  let entries = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some 0 -> ""
        | _ -> line
      in
      let body, note =
        match Rules.contains_sub line " -- " with
        | false -> (line, "")
        | true ->
          let rec find i =
            if i + 4 > String.length line then (line, "")
            else if String.sub line i 4 = " -- " then
              ( String.sub line 0 i,
                String.sub line (i + 4) (String.length line - i - 4) )
            else find (i + 1)
          in
          find 0
      in
      match String.split_on_char ' ' (String.trim body) |> List.filter (( <> ) "") with
      | [] -> ()
      | [ rule_s; file ] -> (
        match Finding.rule_of_name rule_s with
        | Some r ->
          entries :=
            { b_rule = r; b_file = file; b_note = String.trim note; b_line = lineno; b_hits = 0 }
            :: !entries
        | None ->
          errors :=
            Finding.v ~rule:Waiver ~file:path ~line:lineno ~col:0
              (Printf.sprintf "unknown rule %S in baseline entry" rule_s)
            :: !errors)
      | _ ->
        errors :=
          Finding.v ~rule:Waiver ~file:path ~line:lineno ~col:0
            "malformed baseline entry (expected: <rule> <file> [-- note])"
          :: !errors)
    contents;
  (List.rev !entries, List.rev !errors)

let load path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  parse ~path (List.rev !lines)

(* Partition findings through the baseline; returns (kept, suppressed
   count). Stale entries are appended to [kept] as errors afterwards via
   [stale]. *)
let apply entries findings =
  let suppressed = ref 0 in
  let kept =
    List.filter
      (fun (f : Finding.t) ->
        match
          List.find_opt
            (fun e -> e.b_rule = f.Finding.rule && Rules.suffix_matches f.Finding.file e.b_file)
            entries
        with
        | Some e ->
          e.b_hits <- e.b_hits + 1;
          incr suppressed;
          false
        | None -> true)
      findings
  in
  (kept, !suppressed)

let stale ~path entries =
  List.filter_map
    (fun e ->
      if e.b_hits > 0 then None
      else
        Some
          (Finding.v ~rule:Waiver ~file:path ~line:e.b_line ~col:0
             (Printf.sprintf
                "stale baseline entry: rule %S no longer fires in %s%s — delete \
                 this line"
                (Finding.rule_name e.b_rule) e.b_file
                (if e.b_note = "" then "" else Printf.sprintf " (note was: %s)" e.b_note))))
    entries

(* Reporting: compiler-style text on stdout plus a machine-readable JSONL
   report in the telemetry exporter schema (one row per finding with
   kind/array fields, then a lint_summary row), so fleet tooling that
   already parses phone-home output can ingest lint results unchanged. *)

module Json = Purity_telemetry.Json
module Export = Purity_telemetry.Export

type summary = {
  files : int;
  findings : Finding.t list;  (* unwaived, sorted *)
  waived : int;  (* suppressed by in-source [@purity.lint.allow] *)
  waivers : int;  (* total in-source waivers seen *)
  baseline_suppressed : int;
  read_errors : string list;  (* unreadable cmt files *)
}

let finding_row (f : Finding.t) =
  Export.row ~kind:"lint_finding" ~array_id:"purity.lint"
    [
      ("rule", Json.Str (Finding.rule_name f.rule));
      ("severity", Json.Str (Finding.severity_name f.severity));
      ("file", Json.Str f.file);
      ("line", Json.Int f.line);
      ("col", Json.Int f.col);
      ("message", Json.Str f.message);
    ]

let summary_row s =
  let count sev =
    List.length (List.filter (fun f -> f.Finding.severity = sev) s.findings)
  in
  Export.row ~kind:"lint_summary" ~array_id:"purity.lint"
    [
      ("files", Json.Int s.files);
      ("findings", Json.Int (List.length s.findings));
      ("errors", Json.Int (count Finding.Error));
      ("warnings", Json.Int (count Finding.Warning));
      ("waived", Json.Int s.waived);
      ("waivers", Json.Int s.waivers);
      ("baseline_suppressed", Json.Int s.baseline_suppressed);
      ("read_errors", Json.Int (List.length s.read_errors));
    ]

let write_jsonl ~path s =
  let oc = open_out path in
  List.iter
    (fun f ->
      output_string oc (finding_row f);
      output_char oc '\n')
    s.findings;
  output_string oc (summary_row s);
  output_char oc '\n';
  close_out oc

let print ?(quiet = false) s =
  if not quiet then
    List.iter (fun f -> print_endline (Finding.to_string f)) s.findings;
  List.iter (fun e -> Printf.printf "purity.lint: %s\n" e) s.read_errors;
  Printf.printf
    "purity.lint: %d files scanned, %d findings (%d waived in source, %d via \
     baseline)\n"
    s.files
    (List.length s.findings)
    s.waived s.baseline_suppressed

let clean s = s.findings = [] && s.read_errors = []

(* The typed-AST walk. One [check_cmt] call loads a .cmt produced by dune,
   runs every rule over its implementation with a [Tast_iterator], applies
   in-source [@purity.lint.allow "<rule>: <reason>"] waivers scoped to the
   annotated binding/expression, and reports stale waivers (a waiver that
   suppressed nothing) as errors of their own. *)

type waiver = {
  w_rule : Finding.rule;
  w_reason : string;
  w_loc : Location.t;
  mutable w_hits : int;
}

type result = {
  findings : Finding.t list;  (* unwaived findings, including stale waivers *)
  waived : int;  (* findings suppressed by an in-source waiver *)
  waivers : int;  (* waivers present in the file *)
}

let attr_name = "purity.lint.allow"

let payload_string (p : Parsetree.payload) =
  match p with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Some s
  | _ -> None

let split_waiver s =
  match String.index_opt s ':' with
  | None -> (String.trim s, "")
  | Some i ->
    ( String.trim (String.sub s 0 i),
      String.trim (String.sub s (i + 1) (String.length s - i - 1)) )

(* ---- type inspection (no Env needed: get_desc follows links only) ---- *)

let rec arrow_params ty =
  match Types.get_desc ty with
  | Tarrow (_, a, b, _) ->
    let ps, r = arrow_params b in
    (a :: ps, r)
  | _ -> ([], ty)

let is_immediate ty =
  match Types.get_desc ty with
  | Tconstr (p, [], _) ->
    Path.same p Predef.path_int
    || Path.same p Predef.path_char
    || Path.same p Predef.path_bool
    || Path.same p Predef.path_unit
  | _ -> false

let is_tvar ty = match Types.get_desc ty with Tvar _ -> true | _ -> false

let type_to_string ty =
  try Format.asprintf "%a" Printtyp.type_expr ty with _ -> "_"

(* key type of the [('k, 'v) Hashtbl.t] a polymorphic-Hashtbl function is
   applied at; [None] when it cannot be determined *)
let hashtbl_key_type name ty =
  let params, ret = arrow_params ty in
  let table_ty =
    if name = "Hashtbl.create" then Some ret
    else match params with t :: _ -> Some t | [] -> None
  in
  match table_ty with
  | None -> None
  | Some t -> (
    match Types.get_desc t with Tconstr (_, [ k; _ ], _) -> Some k | _ -> None)

(* ---- the per-file walk ---- *)

let check_structure (cfg : Rules.config) ~source_file (str : Typedtree.structure) :
    result =
  let findings = ref [] in
  let waived = ref 0 in
  let all_waivers = ref [] in
  let active = ref [] in
  let emit ~loc rule message =
    match List.find_opt (fun w -> w.w_rule = rule) !active with
    | Some w ->
      w.w_hits <- w.w_hits + 1;
      incr waived
    | None ->
      findings := Finding.of_loc ~rule ~file:source_file loc message :: !findings
  in
  (* waiver parse errors are never themselves waivable *)
  let emit_bad loc message =
    findings := Finding.of_loc ~rule:Waiver ~file:source_file loc message :: !findings
  in
  let parse_waivers (attrs : Parsetree.attributes) =
    List.filter_map
      (fun (a : Parsetree.attribute) ->
        if a.attr_name.txt <> attr_name then None
        else
          match payload_string a.attr_payload with
          | None ->
            emit_bad a.attr_loc
              "waiver payload must be a string literal: [@purity.lint.allow \
               \"<rule>: <reason>\"]";
            None
          | Some s -> (
            let rule_s, reason = split_waiver s in
            match Finding.rule_of_name rule_s with
            | None ->
              emit_bad a.attr_loc
                (Printf.sprintf "unknown rule %S in waiver (expected one of \
                                 determinism/unsafe/domain/hotpath/partial)" rule_s);
              None
            | Some r -> Some { w_rule = r; w_reason = reason; w_loc = a.attr_loc; w_hits = 0 }))
      attrs
  in
  let with_waivers attrs f =
    match parse_waivers attrs with
    | [] -> f ()
    | ws ->
      all_waivers := ws @ !all_waivers;
      active := ws @ !active;
      f ();
      active := List.filter (fun w -> not (List.memq w ws)) !active
  in
  let hot = Rules.in_hot_path cfg source_file in
  let recovery = Rules.in_recovery cfg source_file in
  let audited = Rules.is_audited cfg source_file in
  let audited_domains = Rules.is_audited_domains cfg source_file in
  let check_ident ~loc name (e : Typedtree.expression) =
    if Rules.determinism_violation name then
      emit ~loc Determinism
        (Printf.sprintf
           "%s reads ambient time/entropy and breaks per-seed replay; use the \
            sim clock or a seeded Purity_util.Rng"
           name)
    else if (not audited) && Rules.unsafe_violation name then
      emit ~loc Unsafe
        (Printf.sprintf
           "%s outside the audited kernel modules; move it behind an audited \
            kernel or waive it with a reason"
           name)
    else if (not audited_domains) && Rules.domain_violation name then
      emit ~loc Domain_state
        (Printf.sprintf
           "%s outside the audited multicore modules; cross-domain shared \
            mutable state breaks deterministic replay — go through \
            Purity_par.Pool/Epoch or audit this module in the lint config"
           name)
    else begin
      if recovery && Rules.partial_violation name then
        emit ~loc Partial
          (Printf.sprintf
             "partial %s in recovery/replication code: an exception here is a \
              failed failover; match explicitly"
             name);
      if hot then begin
        if List.mem name Rules.poly_compare then begin
          match arrow_params e.Typedtree.exp_type with
          | a :: _, _ when (not (is_immediate a)) && not (is_tvar a) ->
            emit ~loc Hotpath
              (Printf.sprintf
                 "polymorphic %s at type %s in a hot-path module; use a \
                  specialized comparison (String.equal, Int64.compare, ...)"
                 (if name = "compare" then "compare" else Printf.sprintf "(%s)" name)
                 (type_to_string a))
          | _ -> ()
        end
        else if name = "Hashtbl.hash" then begin
          match arrow_params e.Typedtree.exp_type with
          | a :: _, _ when (not (is_immediate a)) && not (is_tvar a) ->
            emit ~loc Hotpath
              (Printf.sprintf
                 "polymorphic Hashtbl.hash at type %s in a hot-path module; \
                  use a specialized hash (String.hash, Purity_util.Xxhash)"
                 (type_to_string a))
          | _ -> ()
        end
        else if List.mem name Rules.hashtbl_funcs then begin
          match hashtbl_key_type name e.Typedtree.exp_type with
          | Some k when (not (is_immediate k)) && not (is_tvar k) ->
            emit ~loc Hotpath
              (Printf.sprintf
                 "%s with non-primitive key type %s in a hot-path module; use \
                  Hashtbl.Make with a specialized key module \
                  (Purity_util.Keytbl)"
                 name (type_to_string k))
          | _ -> ()
        end
      end
    end
  in
  let default = Tast_iterator.default_iterator in
  let expr sub (e : Typedtree.expression) =
    with_waivers e.exp_attributes (fun () ->
        (match e.exp_desc with
        | Texp_ident (path, lid, _) ->
          check_ident ~loc:lid.loc (Rules.strip_stdlib (Path.name path)) e
        | _ -> ());
        default.expr sub e)
  in
  let value_binding sub (vb : Typedtree.value_binding) =
    with_waivers vb.vb_attributes (fun () -> default.value_binding sub vb)
  in
  let iter = { default with expr; value_binding } in
  (* floating [@@@purity.lint.allow "..."] attributes waive the whole file *)
  let floating =
    List.concat_map
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with Tstr_attribute a -> [ a ] | _ -> [])
      str.str_items
  in
  let file_waivers = parse_waivers floating in
  all_waivers := file_waivers @ !all_waivers;
  active := file_waivers @ !active;
  iter.structure iter str;
  List.iter
    (fun w ->
      if w.w_hits = 0 then
        findings :=
          Finding.of_loc ~rule:Waiver ~file:source_file w.w_loc
            (Printf.sprintf
               "stale waiver: rule %S no longer fires here%s — delete the \
                [@purity.lint.allow] attribute"
               (Finding.rule_name w.w_rule)
               (if w.w_reason = "" then "" else Printf.sprintf " (reason was: %s)" w.w_reason))
          :: !findings)
    !all_waivers;
  {
    findings = List.sort Finding.order !findings;
    waived = !waived;
    waivers = List.length !all_waivers;
  }

(* ---- cmt loading ---- *)

let source_of_cmt (cmt : Cmt_format.cmt_infos) =
  match cmt.cmt_sourcefile with
  | Some f -> f
  | None -> cmt.cmt_modname ^ ".ml"

(* [Ok None] = not an implementation cmt (interface, pack, partial) *)
let check_cmt (cfg : Rules.config) path : ((string * result) option, string) Stdlib.result =
  match Cmt_format.read_cmt path with
  | exception exn ->
    Error (Printf.sprintf "%s: cannot read cmt (%s)" path (Printexc.to_string exn))
  | cmt -> (
    let source_file = source_of_cmt cmt in
    if Rules.is_excluded cfg source_file then Ok None
    else
      match cmt.cmt_annots with
      | Implementation str -> Ok (Some (source_file, check_structure cfg ~source_file str))
      | _ -> Ok None)

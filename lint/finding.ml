(* A finding is one rule violation at one source location. Rules carry a
   fixed severity; any unwaived finding (of either severity) fails the
   build — severity only grades how the report reads. *)

type rule =
  | Determinism  (* wall clock / global RNG in engine code *)
  | Unsafe  (* unchecked accessors & casts outside audited kernels *)
  | Domain_state  (* Domain/Atomic/Mutex/... outside audited multicore modules *)
  | Hotpath  (* polymorphic hash/compare at non-primitive types *)
  | Partial  (* exception-raising partial functions in failover code *)
  | Waiver  (* stale or malformed [@purity.lint.allow] / baseline row *)

let rule_name = function
  | Determinism -> "determinism"
  | Unsafe -> "unsafe"
  | Domain_state -> "domain"
  | Hotpath -> "hotpath"
  | Partial -> "partial"
  | Waiver -> "waiver"

(* [Waiver] is deliberately absent: stale-waiver errors cannot themselves
   be waived or baselined away. *)
let rule_of_name = function
  | "determinism" -> Some Determinism
  | "unsafe" -> Some Unsafe
  | "domain" -> Some Domain_state
  | "hotpath" -> Some Hotpath
  | "partial" -> Some Partial
  | _ -> None

type severity = Error | Warning

let severity_name = function Error -> "error" | Warning -> "warning"

let severity_of_rule = function
  | Determinism | Unsafe | Domain_state | Waiver -> Error
  | Hotpath | Partial -> Warning

type t = {
  rule : rule;
  severity : severity;
  file : string;  (* path as recorded at compile time, e.g. lib/core/state.ml *)
  line : int;  (* 1-based *)
  col : int;  (* 0-based, like the compiler's own reports *)
  message : string;
}

let v ~rule ~file ~line ~col message =
  { rule; severity = severity_of_rule rule; file; line; col; message }

let of_loc ~rule ~file (loc : Location.t) message =
  let p = loc.loc_start in
  v ~rule ~file ~line:p.pos_lnum ~col:(p.pos_cnum - p.pos_bol) message

(* file, then position, then rule name: stable report order *)
let order a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare (rule_name a.rule) (rule_name b.rule)

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s: %s" f.file f.line f.col
    (severity_name f.severity) (rule_name f.rule) f.message
